//! Prometheus text exposition (version 0.0.4).
//!
//! Encodes a [`Telemetry`] registry — and optionally the gauges of an
//! existing [`MetricsRegistry`] — as the plain-text format every
//! Prometheus-compatible scraper understands:
//!
//! ```text
//! # TYPE serve_jobs_done counter
//! serve_jobs_done 42
//! # TYPE serve_latency_e2e_us histogram
//! serve_latency_e2e_us_bucket{class="regular",le="767"} 9
//! serve_latency_e2e_us_bucket{class="regular",le="+Inf"} 10
//! serve_latency_e2e_us_sum{class="regular"} 4021
//! serve_latency_e2e_us_count{class="regular"} 10
//! ```
//!
//! Metric names are sanitized to `[a-zA-Z0-9_:]` (dots become
//! underscores); label values get the exposition escapes (`\\`, `\"`,
//! `\n`). Families sharing a base name emit one `# TYPE` line followed by
//! every labeled sample, as the format requires.

use crate::{split_labels, Histogram, Telemetry};
use salam_obs::MetricsRegistry;

/// Sanitizes a metric (family) name: Prometheus allows
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`, so dots and anything else exotic become
/// underscores and a leading digit gets prefixed.
fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
            out.push(c);
            continue;
        }
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        out.push(if ok { c } else { '_' });
    }
    out
}

/// Escapes a label value per the exposition format.
fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// `base{k="v"}` key → (sanitized family, rendered label list without
/// braces, e.g. `class="regular",tenant="alice"`).
fn family_and_labels(key: &str) -> (String, String) {
    match split_labels(key) {
        Some((base, labels)) => {
            let rendered = labels
                .iter()
                .map(|(k, v)| format!("{}=\"{}\"", sanitize_name(k), escape_label(v)))
                .collect::<Vec<_>>()
                .join(",");
            (sanitize_name(base), rendered)
        }
        None => (sanitize_name(key), String::new()),
    }
}

fn sample_line(out: &mut String, family: &str, suffix: &str, labels: &str, value: &str) {
    out.push_str(family);
    out.push_str(suffix);
    if !labels.is_empty() {
        out.push('{');
        out.push_str(labels);
        out.push('}');
    }
    out.push(' ');
    out.push_str(value);
    out.push('\n');
}

/// Joins two brace-less label lists (`a,b` with either side possibly
/// empty).
fn join_labels(a: &str, b: &str) -> String {
    match (a.is_empty(), b.is_empty()) {
        (true, _) => b.to_string(),
        (_, true) => a.to_string(),
        _ => format!("{a},{b}"),
    }
}

fn encode_histogram(out: &mut String, family: &str, labels: &str, h: &Histogram) {
    let mut cumulative = 0u64;
    for (bound, count) in h.nonzero_buckets() {
        cumulative += count;
        sample_line(
            out,
            family,
            "_bucket",
            &join_labels(labels, &format!("le=\"{bound}\"")),
            &cumulative.to_string(),
        );
    }
    sample_line(
        out,
        family,
        "_bucket",
        &join_labels(labels, "le=\"+Inf\""),
        &h.count().to_string(),
    );
    sample_line(out, family, "_sum", labels, &h.sum().to_string());
    sample_line(out, family, "_count", labels, &h.count().to_string());
}

/// Formats a gauge value; Prometheus spells non-finite values out.
fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else {
        format!("{v}")
    }
}

/// Emits one metric kind: groups consecutive keys by family so each
/// family gets a single `# TYPE` line. Keys arrive in BTreeMap order, so
/// all labeled variants of a family are adjacent.
fn encode_kind<'a, I, F>(out: &mut String, kind: &str, entries: I, mut emit: F)
where
    I: Iterator<Item = (&'a str, String, String)>,
    F: FnMut(&mut String, &str, &str, &str),
{
    let mut last_family = String::new();
    for (key, family, labels) in entries {
        if family != last_family {
            out.push_str("# TYPE ");
            out.push_str(&family);
            out.push(' ');
            out.push_str(kind);
            out.push('\n');
            last_family = family.clone();
        }
        emit(out, key, &family, &labels);
    }
}

/// Encodes `t` alone.
pub fn encode(t: &Telemetry) -> String {
    encode_with_gauges(t, &MetricsRegistry::new())
}

/// Encodes `t` plus every finite entry of `reg` as an untyped gauge —
/// the bridge that exposes the existing JSON `/metrics` content to a
/// Prometheus scraper from the same endpoint.
pub fn encode_with_gauges(t: &Telemetry, reg: &MetricsRegistry) -> String {
    let mut out = String::new();

    let counters: Vec<_> = t
        .counters()
        .map(|(k, _)| {
            let (f, l) = family_and_labels(k);
            (k, f, l)
        })
        .collect();
    encode_kind(
        &mut out,
        "counter",
        counters.into_iter(),
        |out, key, family, labels| {
            sample_line(out, family, "", labels, &t.counter(key).to_string());
        },
    );

    let gauges: Vec<_> = t
        .gauges()
        .map(|(k, _)| {
            let (f, l) = family_and_labels(k);
            (k, f, l)
        })
        .collect();
    encode_kind(
        &mut out,
        "gauge",
        gauges.into_iter(),
        |out, key, family, labels| {
            sample_line(
                out,
                family,
                "",
                labels,
                &fmt_f64(t.gauge(key).unwrap_or(0.0)),
            );
        },
    );

    let hists: Vec<_> = t
        .hists()
        .map(|(k, _)| {
            let (f, l) = family_and_labels(k);
            (k, f, l)
        })
        .collect();
    encode_kind(
        &mut out,
        "histogram",
        hists.into_iter(),
        |out, key, family, labels| {
            encode_histogram(out, family, labels, t.hist(key).expect("hist key"));
        },
    );

    // Registry gauges last: stable insertion order, skip non-finite
    // (exposition has spellings for them, but a point-in-time snapshot
    // gauge that is NaN carries no information a scraper can use).
    let reg_entries: Vec<_> = reg
        .entries()
        .iter()
        .filter(|(_, v)| v.is_finite())
        .map(|(k, v)| (sanitize_name(k), *v))
        .collect();
    let mut last = "";
    for (name, v) in &reg_entries {
        if name != last {
            out.push_str("# TYPE ");
            out.push_str(name);
            out.push_str(" gauge\n");
            last = name;
        }
        sample_line(&mut out, name, "", "", &fmt_f64(*v));
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labeled;

    #[test]
    fn names_are_sanitized() {
        assert_eq!(sanitize_name("serve.jobs.done"), "serve_jobs_done");
        assert_eq!(sanitize_name("9lives"), "_9lives");
        assert_eq!(sanitize_name("ok_name:x"), "ok_name:x");
        assert_eq!(sanitize_name("sp ace"), "sp_ace");
    }

    #[test]
    fn counters_and_gauges_expose() {
        let mut t = Telemetry::new();
        t.counter_add("serve.jobs.done", 3);
        t.gauge_set(&labeled("queue.depth", &[("class", "cpu")]), 2.0);
        let text = encode(&t);
        assert!(text.contains("# TYPE serve_jobs_done counter\nserve_jobs_done 3\n"));
        assert!(text.contains("# TYPE queue_depth gauge\nqueue_depth{class=\"cpu\"} 2\n"));
    }

    #[test]
    fn histogram_series_are_cumulative_and_complete() {
        let mut t = Telemetry::new();
        let key = labeled("lat_us", &[("class", "regular")]);
        for v in [1u64, 1, 2, 100] {
            t.record(&key, v);
        }
        let text = encode(&t);
        assert!(text.contains("# TYPE lat_us histogram\n"));
        assert!(text.contains("lat_us_bucket{class=\"regular\",le=\"1\"} 2\n"));
        assert!(text.contains("lat_us_bucket{class=\"regular\",le=\"2\"} 3\n"));
        assert!(text.contains("lat_us_bucket{class=\"regular\",le=\"+Inf\"} 4\n"));
        assert!(text.contains("lat_us_sum{class=\"regular\"} 104\n"));
        assert!(text.contains("lat_us_count{class=\"regular\"} 4\n"));
        // Cumulative counts never decrease along the bucket series.
        let mut prev = 0u64;
        for line in text.lines().filter(|l| l.starts_with("lat_us_bucket")) {
            let n: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(n >= prev, "bucket series not cumulative: {line}");
            prev = n;
        }
    }

    #[test]
    fn one_type_line_per_family() {
        let mut t = Telemetry::new();
        t.record(&labeled("lat_us", &[("class", "cpu")]), 5);
        t.record(&labeled("lat_us", &[("class", "regular")]), 7);
        t.record("lat_us", 6);
        let text = encode(&t);
        let type_lines = text
            .lines()
            .filter(|l| *l == "# TYPE lat_us histogram")
            .count();
        assert_eq!(
            type_lines, 1,
            "family must be declared exactly once:\n{text}"
        );
    }

    #[test]
    fn label_values_are_escaped() {
        let mut t = Telemetry::new();
        t.counter_add(&labeled("hits", &[("tenant", "we\"ird\nname")]), 1);
        let text = encode(&t);
        assert!(text.contains("hits{tenant=\"we\\\"ird\\nname\"} 1\n"));
    }

    #[test]
    fn registry_gauges_ride_along() {
        let t = Telemetry::new();
        let mut reg = MetricsRegistry::new();
        reg.set("serve.jobs.submitted", 4.0);
        reg.set("bad", f64::NAN);
        let text = encode_with_gauges(&t, &reg);
        assert!(text.contains("# TYPE serve_jobs_submitted gauge\nserve_jobs_submitted 4\n"));
        assert!(!text.contains("bad"));
    }
}
