//! Typed telemetry for the serving and sweep layers.
//!
//! [`salam_obs::MetricsRegistry`] stores point-in-time `f64` gauges; that
//! is the right currency for simulation stats but cannot answer latency
//! questions ("what is p99 end-to-end per tenant?"). This crate adds the
//! three missing production pieces, all std-only:
//!
//! * [`Telemetry`] — a registry of monotonic counters and log-bucketed
//!   [`Histogram`]s with optional `{label="value"}` key suffixes and a
//!   deterministic (merge-order-independent) [`Telemetry::merge_from`];
//! * [`JobTrace`]/[`TraceCtx`] — request-scoped span trees feeding the
//!   existing Chrome `trace_event` exporter, one per served job;
//! * [`prom`] — Prometheus text exposition (`# TYPE` + counter/gauge
//!   samples + `_bucket`/`_sum`/`_count` histogram series);
//! * [`FlightRecorder`] — an always-on bounded ring of recent lifecycle /
//!   engine events, dumped into a post-mortem artifact when a job dies.
//!
//! Nothing here touches simulation state: recording is either under the
//! caller's existing lock (spans, serve histograms) or behind a cheap
//! `is_enabled()` gate (flight recorder), and the non-perturbation tests
//! in `salam-bench` pin that simulation artifacts are byte-identical with
//! telemetry on and off.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;

pub mod flight;
pub mod hist;
pub mod prom;
pub mod span;

pub use flight::{FlightEvent, FlightRecorder};
pub use hist::Histogram;
pub use span::{JobTrace, TraceCtx};

use salam_obs::MetricsRegistry;

/// Builds a labeled metric key: `base{k="v",k2="v2"}` (Prometheus-style;
/// the exposition encoder and the dotted-path exporter both parse it
/// back). Labels with an empty value are skipped.
pub fn labeled(base: &str, labels: &[(&str, &str)]) -> String {
    let mut out = String::from(base);
    let mut first = true;
    for (k, v) in labels {
        if v.is_empty() {
            continue;
        }
        out.push(if first { '{' } else { ',' });
        first = false;
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(v);
        out.push('"');
    }
    if !first {
        out.push('}');
    }
    out
}

/// A registry of typed metrics: monotonic counters, gauges and
/// histograms, keyed by `base` or `base{label="value"}` names.
///
/// Iteration order is the `BTreeMap` key order, so every export is
/// deterministic regardless of the order metrics were first touched —
/// worker scheduling never shows through.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    hists: BTreeMap<String, Histogram>,
}

impl Telemetry {
    /// An empty registry.
    pub fn new() -> Self {
        Telemetry::default()
    }

    /// Adds `n` to the counter `key`, creating it at zero.
    pub fn counter_add(&mut self, key: &str, n: u64) {
        *self.counters.entry(key.to_string()).or_insert(0) += n;
    }

    /// Sets the gauge `key` (last write wins, also across merges).
    pub fn gauge_set(&mut self, key: &str, v: f64) {
        self.gauges.insert(key.to_string(), v);
    }

    /// Records one sample into the histogram `key`, creating it empty.
    pub fn record(&mut self, key: &str, v: u64) {
        self.hists.entry(key.to_string()).or_default().record(v);
    }

    /// The histogram at `key`, if any samples were recorded.
    pub fn hist(&self, key: &str) -> Option<&Histogram> {
        self.hists.get(key)
    }

    /// The counter at `key`, zero if never incremented.
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// The gauge at `key`, if ever set.
    pub fn gauge(&self, key: &str) -> Option<f64> {
        self.gauges.get(key).copied()
    }

    /// All counters in key order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// All gauges in key order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// All histograms in key order.
    pub fn hists(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.hists.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.hists.is_empty()
    }

    /// Merges another registry into this one: counters add, histograms
    /// merge element-wise, gauges overwrite (last merge wins — gauges are
    /// point-in-time facts, so order dependence is inherent and callers
    /// must not put determinism-sensitive data in gauges).
    pub fn merge_from(&mut self, other: &Telemetry) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, h) in &other.hists {
            self.hists.entry(k.clone()).or_default().merge(h);
        }
    }

    /// Exports everything into a dotted-path [`MetricsRegistry`] (the
    /// JSON `/metrics` currency): `base{k="v"}` becomes `base.k.v`,
    /// histograms expand to `.count/.p50/.p95/.p99/.max/.mean`.
    pub fn export_to_registry(&self, reg: &mut MetricsRegistry) {
        for (k, v) in &self.counters {
            reg.set(&dotted(k), *v as f64);
        }
        for (k, v) in &self.gauges {
            reg.set(&dotted(k), *v);
        }
        for (k, h) in &self.hists {
            let base = dotted(k);
            reg.set(&format!("{base}.count"), h.count() as f64);
            reg.set(&format!("{base}.p50"), h.p50() as f64);
            reg.set(&format!("{base}.p95"), h.p95() as f64);
            reg.set(&format!("{base}.p99"), h.p99() as f64);
            reg.set(&format!("{base}.max"), h.max() as f64);
            reg.set(&format!("{base}.mean"), h.mean());
        }
    }
}

/// `base{k="v",k2="v2"}` → `base.k.v.k2.v2`, for the dotted-path JSON
/// registry where `{}` would read as noise.
fn dotted(key: &str) -> String {
    let Some((base, labels)) = split_labels(key) else {
        return key.to_string();
    };
    let mut out = String::from(base);
    for (k, v) in labels {
        out.push('.');
        out.push_str(&k);
        out.push('.');
        out.push_str(&v);
    }
    out
}

/// Splits `base{k="v",...}` into the base name and its label pairs;
/// `None` when the key carries no labels.
pub(crate) fn split_labels(key: &str) -> Option<(&str, Vec<(String, String)>)> {
    let open = key.find('{')?;
    let inner = key[open..].strip_prefix('{')?.strip_suffix('}')?;
    let mut labels = Vec::new();
    for part in inner.split(',') {
        let (k, v) = part.split_once('=')?;
        labels.push((k.to_string(), v.trim_matches('"').to_string()));
    }
    Some((&key[..open], labels))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labeled_builds_and_splits() {
        let k = labeled(
            "serve.latency.e2e_us",
            &[("class", "regular"), ("tenant", "alice")],
        );
        assert_eq!(
            k,
            "serve.latency.e2e_us{class=\"regular\",tenant=\"alice\"}"
        );
        let (base, labels) = split_labels(&k).unwrap();
        assert_eq!(base, "serve.latency.e2e_us");
        assert_eq!(labels[0], ("class".to_string(), "regular".to_string()));
        assert_eq!(labels[1], ("tenant".to_string(), "alice".to_string()));
        assert_eq!(labeled("plain", &[]), "plain");
        assert!(split_labels("plain").is_none());
        assert_eq!(labeled("x", &[("t", "")]), "x");
    }

    #[test]
    fn merge_is_typed() {
        let mut a = Telemetry::new();
        a.counter_add("jobs", 2);
        a.gauge_set("depth", 5.0);
        a.record("lat", 10);
        let mut b = Telemetry::new();
        b.counter_add("jobs", 3);
        b.gauge_set("depth", 7.0);
        b.record("lat", 20);
        a.merge_from(&b);
        assert_eq!(a.counter("jobs"), 5);
        assert_eq!(a.gauge("depth"), Some(7.0));
        assert_eq!(a.hist("lat").unwrap().count(), 2);
        assert_eq!(a.hist("lat").unwrap().max(), 20);
    }

    #[test]
    fn merge_order_does_not_change_exports() {
        let mut parts: Vec<Telemetry> = Vec::new();
        for w in 0..4u64 {
            let mut t = Telemetry::new();
            for i in 0..50 {
                t.record("lat", (w * 1000 + i * 37) % 5000);
                t.counter_add("n", 1);
            }
            parts.push(t);
        }
        let mut fwd = Telemetry::new();
        for p in &parts {
            fwd.merge_from(p);
        }
        let mut rev = Telemetry::new();
        for p in parts.iter().rev() {
            rev.merge_from(p);
        }
        let mut ra = MetricsRegistry::new();
        let mut rb = MetricsRegistry::new();
        fwd.export_to_registry(&mut ra);
        rev.export_to_registry(&mut rb);
        assert_eq!(ra.to_json(), rb.to_json());
        assert_eq!(prom::encode(&fwd), prom::encode(&rev));
    }

    #[test]
    fn registry_export_expands_labels_and_quantiles() {
        let mut t = Telemetry::new();
        t.record(&labeled("lat_us", &[("class", "cpu")]), 100);
        t.counter_add("done", 1);
        let mut reg = MetricsRegistry::new();
        t.export_to_registry(&mut reg);
        assert_eq!(reg.get("done"), Some(1.0));
        assert_eq!(reg.get("lat_us.class.cpu.count"), Some(1.0));
        assert!(reg.get("lat_us.class.cpu.p99").unwrap() >= 100.0);
    }
}
