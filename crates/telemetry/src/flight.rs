//! The post-mortem flight recorder.
//!
//! An always-on, bounded ring of recent lifecycle and engine events
//! (submits, dispatches, run starts/ends, engine heartbeats, faults).
//! Recording is cheap — one mutex lock and a `VecDeque` push, behind an
//! [`FlightRecorder::is_enabled`] gate callers check before formatting a
//! message. When a job dies (panic, deadlock, kernel fault) the server
//! dumps the recent tail into the job's `postmortem` artifact, which is
//! the "what happened in the seconds before" that a point-in-time metrics
//! snapshot cannot answer.
//!
//! Like [`salam_obs::SharedTrace`], the handle is a cloneable
//! `Option<Arc<Mutex<..>>>`: a disabled recorder is a `None` and every
//! hook is a no-op, so the engine can carry one unconditionally.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use salam_obs::json::escape;

/// One recorded event.
#[derive(Debug, Clone)]
pub struct FlightEvent {
    /// Monotonic sequence number (never reused, survives eviction).
    pub seq: u64,
    /// Nanoseconds since the recorder was created.
    pub at_ns: u64,
    /// The request this event belongs to (0 = server-wide).
    pub trace_id: u64,
    /// Coarse event class (`job`, `sched`, `engine`, `fault`, ...).
    pub category: &'static str,
    /// Human-readable detail.
    pub message: String,
}

#[derive(Debug)]
struct Ring {
    events: VecDeque<FlightEvent>,
    cap: usize,
    seq: u64,
    dropped: u64,
    epoch: Instant,
}

/// Default ring depth: enough for thousands of job lifecycles or a long
/// stretch of engine heartbeats, at ~100 bytes apiece.
pub const DEFAULT_CAPACITY: usize = 4096;

/// Cloneable handle to the (optional) shared ring.
#[derive(Debug, Clone, Default)]
pub struct FlightRecorder {
    inner: Option<Arc<Mutex<Ring>>>,
}

impl FlightRecorder {
    /// A recorder whose every hook is a no-op.
    pub fn disabled() -> Self {
        FlightRecorder { inner: None }
    }

    /// An active recorder holding the most recent `capacity` events.
    pub fn enabled(capacity: usize) -> Self {
        FlightRecorder {
            inner: Some(Arc::new(Mutex::new(Ring {
                events: VecDeque::new(),
                cap: capacity.max(1),
                seq: 0,
                dropped: 0,
                epoch: Instant::now(),
            }))),
        }
    }

    /// Callers must check this before formatting a message, so a disabled
    /// recorder costs one branch.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Records one event (no-op when disabled).
    pub fn record(&self, trace_id: u64, category: &'static str, message: String) {
        let Some(inner) = &self.inner else { return };
        let mut ring = inner.lock().unwrap();
        let at_ns = ring.epoch.elapsed().as_nanos() as u64;
        let seq = ring.seq;
        ring.seq += 1;
        if ring.events.len() == ring.cap {
            ring.events.pop_front();
            ring.dropped += 1;
        }
        ring.events.push_back(FlightEvent {
            seq,
            at_ns,
            trace_id,
            category,
            message,
        });
    }

    /// Events evicted so far (diagnostics).
    pub fn dropped(&self) -> u64 {
        self.inner
            .as_ref()
            .map(|i| i.lock().unwrap().dropped)
            .unwrap_or(0)
    }

    /// Number of events currently held.
    /// Number of events currently held (0 when disabled).
    pub fn len(&self) -> usize {
        self.inner
            .as_ref()
            .map(|i| i.lock().unwrap().events.len())
            .unwrap_or(0)
    }

    /// True when the recorder is disabled or holds no events.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The most recent `limit` events as a JSON array, oldest first. Each
    /// element: `{"seq":n,"at_ms":f,"trace_id":"hex","cat":"...","msg":"..."}`.
    /// Returns `"[]"` when disabled.
    pub fn tail_json(&self, limit: usize) -> String {
        let Some(inner) = &self.inner else {
            return "[]".to_string();
        };
        let ring = inner.lock().unwrap();
        let skip = ring.events.len().saturating_sub(limit);
        let mut out = String::from("[");
        for (i, ev) in ring.events.iter().skip(skip).enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n  {{\"seq\": {}, \"at_ms\": {:.3}, \"trace_id\": \"{:016x}\", \"cat\": \"{}\", \"msg\": \"{}\"}}",
                ev.seq,
                ev.at_ns as f64 / 1e6,
                ev.trace_id,
                escape(ev.category),
                escape(&ev.message),
            ));
        }
        out.push_str("\n]");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_free_and_empty() {
        let f = FlightRecorder::disabled();
        assert!(!f.is_enabled());
        f.record(1, "job", "ignored".into());
        assert_eq!(f.len(), 0);
        assert_eq!(f.tail_json(10), "[]");
    }

    #[test]
    fn ring_keeps_the_most_recent_events() {
        let f = FlightRecorder::enabled(3);
        for i in 0..5 {
            f.record(0, "job", format!("event {i}"));
        }
        assert_eq!(f.len(), 3);
        assert_eq!(f.dropped(), 2);
        let tail = f.tail_json(10);
        assert!(!tail.contains("event 1"));
        assert!(tail.contains("event 2"));
        assert!(tail.contains("event 4"));
    }

    #[test]
    fn tail_json_is_valid_and_escaped() {
        let f = FlightRecorder::enabled(8);
        f.record(0xabc, "fault", "detail with \"quotes\"\nand newline".into());
        let tail = f.tail_json(4);
        let parsed = salam_obs::json::parse(&tail).unwrap();
        let arr = parsed.as_array().unwrap();
        assert_eq!(arr.len(), 1);
        assert_eq!(
            arr[0].get("trace_id").and_then(|v| v.as_str()),
            Some("0000000000000abc")
        );
        assert!(arr[0]
            .get("msg")
            .and_then(|v| v.as_str())
            .unwrap()
            .contains('\n'));
    }

    #[test]
    fn handles_share_one_ring() {
        let a = FlightRecorder::enabled(8);
        let b = a.clone();
        b.record(1, "job", "from clone".into());
        assert_eq!(a.len(), 1);
    }
}
