//! Log-bucketed HDR-style histograms over non-negative integers.
//!
//! Fixed layout — every histogram has the same 252 buckets, so merging is
//! element-wise addition and therefore commutative and associative:
//! recording the same samples in any order, split across any number of DSE
//! workers and merged in any order, yields bit-identical bucket counts and
//! quantiles. That merge-order independence is what makes the serve/DSE
//! determinism guarantees survive telemetry.
//!
//! Bucket scheme (values are `u64`, e.g. latencies in microseconds):
//!
//! * bucket 0 holds the value 0, buckets 1–3 hold 1, 2, 3 exactly;
//! * every value `v >= 4` lands in one of four sub-buckets of its binary
//!   magnitude: with `e = floor(log2 v)` and `sub = (v >> (e-2)) & 3`,
//!   the bucket index is `4 + (e-2)*4 + sub`.
//!
//! Four sub-buckets per power of two bound the relative quantile error at
//! 25% while keeping the whole histogram a flat 2 KiB array — the classic
//! HdrHistogram trade at its coarsest setting.

/// Exact buckets for 0..=3, then 4 sub-buckets for each of the 62
/// magnitudes 2^2..2^63.
const EXACT: usize = 4;
const BUCKETS: usize = EXACT + 62 * 4;

/// A fixed-layout log-bucketed histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// The bucket index for `v` (see the module docs for the layout).
fn index_of(v: u64) -> usize {
    if v < EXACT as u64 {
        return v as usize;
    }
    let e = 63 - v.leading_zeros() as usize;
    let sub = ((v >> (e - 2)) & 3) as usize;
    EXACT + (e - 2) * 4 + sub
}

/// The inclusive upper bound of bucket `index` — the value reported for
/// any quantile that lands in it.
fn upper_bound(index: usize) -> u64 {
    if index < EXACT {
        return index as u64;
    }
    let e = 2 + (index - EXACT) / 4;
    let sub = ((index - EXACT) % 4) as u128;
    // Buckets cover [2^e + sub*2^(e-2), 2^e + (sub+1)*2^(e-2) - 1]; the
    // very last bucket's bound is exactly u64::MAX, so compute in u128.
    let bound = (1u128 << e) + (sub + 1) * (1u128 << (e - 2)) - 1;
    bound.min(u64::MAX as u128) as u64
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Records `n` identical samples.
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[index_of(v)] += n;
        self.count += n;
        self.sum = self.sum.saturating_add(v.saturating_mul(n));
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Element-wise merge: commutative, associative, deterministic across
    /// any split of the samples over workers.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// True when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (exact, not bucketed).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of the recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q` in `[0, 1]`: the inclusive upper bound of
    /// the bucket holding the sample of integer rank `max(1, ceil(q *
    /// count))` — exact for values below 4, within 25% above. Returns 0
    /// for an empty histogram; `q >= 1` reports the exact maximum.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if q >= 1.0 {
            return self.max;
        }
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Never report past the true extremes.
                return upper_bound(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median (bucket upper bound).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile (bucket upper bound).
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile (bucket upper bound).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Non-empty buckets as `(inclusive upper bound, count)`, ascending —
    /// the series a Prometheus `_bucket` exposition is built from.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (upper_bound(i), c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use salam_obs::SplitMix64;

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..4 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.25), 0);
        assert_eq!(h.quantile(0.5), 1);
        assert_eq!(h.quantile(0.75), 2);
        assert_eq!(h.quantile(1.0), 3);
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 6);
    }

    #[test]
    fn buckets_partition_the_u64_line() {
        // Every bucket's range starts right after the previous bucket ends.
        let mut prev_end = None;
        for i in 0..BUCKETS {
            let end = upper_bound(i);
            if let Some(p) = prev_end {
                assert!(end > p, "bucket {i} upper bound not increasing");
            }
            prev_end = Some(end);
        }
        // And index_of(v) maps v into a bucket whose bound is >= v.
        for v in [0, 1, 3, 4, 5, 7, 8, 100, 1023, 1024, u64::MAX / 2, u64::MAX] {
            let i = index_of(v);
            assert!(upper_bound(i) >= v, "value {v} above its bucket bound");
            if i > 0 {
                assert!(upper_bound(i - 1) < v, "value {v} fits an earlier bucket");
            }
        }
    }

    #[test]
    fn quantile_error_is_bounded() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        for (q, want) in [(0.5, 5_000u64), (0.95, 9_500), (0.99, 9_900)] {
            let got = h.quantile(q);
            assert!(got >= want, "q{q}: {got} < exact {want}");
            assert!(
                (got - want) as f64 <= want as f64 * 0.25,
                "q{q}: {got} overshoots exact {want} by more than 25%"
            );
        }
        assert_eq!(h.quantile(1.0), 10_000);
        assert_eq!(h.max(), 10_000);
        assert_eq!(h.min(), 1);
    }

    #[test]
    fn merge_is_order_independent() {
        let mut rng = SplitMix64::new(42);
        let samples: Vec<u64> = (0..1000).map(|_| rng.next_u64() >> 40).collect();

        let mut whole = Histogram::new();
        for &s in &samples {
            whole.record(s);
        }

        // Split across 8 "workers", merge in reverse order.
        let mut shards: Vec<Histogram> = (0..8).map(|_| Histogram::new()).collect();
        for (i, &s) in samples.iter().enumerate() {
            shards[i % 8].record(s);
        }
        let mut merged = Histogram::new();
        for shard in shards.iter().rev() {
            merged.merge(shard);
        }
        assert_eq!(whole, merged);
        assert_eq!(whole.quantile(0.99), merged.quantile(0.99));
    }

    #[test]
    fn empty_histogram_is_well_defined() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert!(h.is_empty());
        assert_eq!(h.nonzero_buckets().count(), 0);
    }

    #[test]
    fn nonzero_buckets_are_cumulative_consistent() {
        let mut h = Histogram::new();
        for v in [1u64, 1, 5, 100, 100_000] {
            h.record(v);
        }
        let total: u64 = h.nonzero_buckets().map(|(_, c)| c).sum();
        assert_eq!(total, h.count());
        let bounds: Vec<u64> = h.nonzero_buckets().map(|(b, _)| b).collect();
        assert!(bounds.windows(2).all(|w| w[0] < w[1]));
    }
}
