//! Request-scoped span trees.
//!
//! Every served job gets a [`TraceCtx`] at `submit` time and a
//! [`JobTrace`] — a small per-job [`TraceRecorder`] with three fixed
//! tracks (`request`, `sched`, `run`) — that follows the job through
//! admission → scheduler slot → worker → engine run. Stages emit begin /
//! end spans, instants and flow edges; the result exports through the
//! existing Chrome `trace_event` machinery as the job's `trace` artifact,
//! with the engine's own op-level recorder merged in when the job ran
//! with tracing enabled.
//!
//! Timestamps are nanoseconds since the owning server's epoch (its boot
//! `Instant`), converted to the recorder's picosecond domain. All
//! emission happens under the server's existing state lock, so the trace
//! adds no synchronization of its own.

use salam_obs::det::SplitMix64;
use salam_obs::{export_chrome_json, SharedTrace, SpanId, TraceRecorder, TraceSink, TrackId};

/// The identity a request carries through every stage: a stable
/// `trace_id` (derived from the job id) and the currently-open span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCtx {
    /// Request-scoped identity, printed in post-mortems and flight
    /// events; stable across retries of the same job.
    pub trace_id: u64,
    /// The span the next child should parent under / flow from.
    pub span_id: u64,
}

impl TraceCtx {
    /// Derives the context for a job id. SplitMix64 gives well-mixed,
    /// deterministic ids (job 1 and job 2 don't read as neighbours).
    pub fn for_job(job_id: u64) -> Self {
        TraceCtx {
            trace_id: SplitMix64::new(job_id).next_u64(),
            span_id: 0,
        }
    }
}

/// Per-job span recorder with the fixed lifecycle tracks.
#[derive(Debug, Clone)]
pub struct JobTrace {
    trace: SharedTrace,
    ctx: TraceCtx,
    /// `request`: the end-to-end job span + admission instants.
    pub request: TrackId,
    /// `sched`: queued time and scheduler decisions.
    pub sched: TrackId,
    /// `run`: worker-slot occupancy and engine lifecycle.
    pub run: TrackId,
}

/// Per-job rings are small: a lifecycle is a dozen events, and the
/// engine's op-level events live in the engine's own recorder.
const JOB_TRACE_CAPACITY: usize = 4096;

impl JobTrace {
    /// A fresh per-job trace with `request`/`sched`/`run` tracks.
    pub fn new(job_id: u64) -> Self {
        let trace = SharedTrace::from_recorder(TraceRecorder::new(JOB_TRACE_CAPACITY));
        let request = trace.track("request");
        let sched = trace.track("sched");
        let run = trace.track("run");
        JobTrace {
            trace,
            ctx: TraceCtx::for_job(job_id),
            request,
            sched,
            run,
        }
    }

    /// The job's trace context (trace id + job id).
    pub fn ctx(&self) -> TraceCtx {
        self.ctx
    }

    /// Opens a span on `track` at `at_ns` (nanoseconds since the server
    /// epoch).
    pub fn begin(&self, track: TrackId, name: &str, at_ns: u64) -> SpanId {
        self.trace.begin_span(track, name, ns_to_ps(at_ns))
    }

    /// Closes a span opened by [`JobTrace::begin`].
    pub fn end(&self, span: SpanId, at_ns: u64) {
        self.trace.end_span(span, ns_to_ps(at_ns));
    }

    /// Records a point-in-time marker on `track`.
    pub fn instant(&self, track: TrackId, name: &str, at_ns: u64) {
        self.trace.instant(track, name, ns_to_ps(at_ns));
    }

    /// A flow edge between two spans (rendered as an arrow in Perfetto —
    /// e.g. queued → running across tracks).
    pub fn flow(&self, from: SpanId, to: SpanId, name: &str, at_ns: u64) {
        self.trace.edge(from, to, name, ns_to_ps(at_ns));
    }

    /// Exports the lifecycle spans — plus `extra` recorders (the engine's
    /// op-level trace), whose timestamps are already absolute — as Chrome
    /// `trace_event` JSON.
    pub fn export_chrome(&self, extra: &[&TraceRecorder]) -> String {
        let mut merged = TraceRecorder::new(TraceRecorder::DEFAULT_CAPACITY);
        self.trace.with_recorder(|rec| merged.merge_from(rec));
        for rec in extra {
            merged.merge_from(rec);
        }
        // Stamp the request identity where trace viewers (and the span
        // table in `salam_report --spans`) can find it.
        let meta = merged.track("request");
        merged.instant(meta, &format!("trace_id:{:016x}", self.ctx.trace_id), 0);
        export_chrome_json(&merged)
    }
}

fn ns_to_ps(ns: u64) -> u64 {
    ns.saturating_mul(1000)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_ids_are_stable_and_distinct() {
        assert_eq!(TraceCtx::for_job(7).trace_id, TraceCtx::for_job(7).trace_id);
        assert_ne!(TraceCtx::for_job(1).trace_id, TraceCtx::for_job(2).trace_id);
    }

    #[test]
    fn lifecycle_exports_as_chrome_json() {
        let jt = JobTrace::new(3);
        let job = jt.begin(jt.request, "job 3 (gemm)", 0);
        let queued = jt.begin(jt.sched, "queued", 10);
        jt.instant(jt.request, "admitted", 10);
        jt.end(queued, 2_000);
        let run = jt.begin(jt.run, "run", 2_000);
        jt.flow(queued, run, "dispatch", 2_000);
        jt.end(run, 5_000);
        jt.end(job, 5_000);

        let text = jt.export_chrome(&[]);
        let parsed = salam_obs::json::parse(&text).unwrap();
        let events = parsed.get("traceEvents").unwrap().as_array().unwrap();
        assert!(events.len() >= 8);
        let names: Vec<&str> = events
            .iter()
            .filter_map(|e| e.get("name").and_then(|n| n.as_str()))
            .collect();
        assert!(names.contains(&"queued"));
        assert!(names.contains(&"dispatch"));
        assert!(names.iter().any(|n| n.starts_with("trace_id:")));
    }

    #[test]
    fn engine_recorder_merges_into_the_export() {
        let jt = JobTrace::new(1);
        let s = jt.begin(jt.run, "run", 0);
        jt.end(s, 100);
        let mut engine = TraceRecorder::new(64);
        let t = engine.track("engine/gemm");
        engine.instant(t, "cycle", 42);
        let text = jt.export_chrome(&[&engine]);
        assert!(text.contains("engine/gemm"));
        assert!(text.contains("\"cycle\""));
    }
}
